// Package compiler is the prefetching compiler of the paper: it analyzes
// a program's loop nests with the locality analysis, decides which
// references need prefetching and along which loop to software-pipeline
// them, strip-mines loops so that spatial references are prefetched once
// per block of pages rather than once per iteration, schedules prefetches
// a latency-covering distance ahead, converts pipeline prologs into block
// prefetches, and emits release hints for the trailing references of
// streaming groups, bundled with prefetches into single calls.
//
// The output is a transformed copy of the program; the original is left
// untouched, so "original" and "prefetching" versions of an application
// can run side by side, as in the paper's O and P bars.
package compiler

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/locality"
	"repro/internal/profile"
)

// Options configure the pass.
type Options struct {
	// PagesPerFetch is the block size for spatial prefetches ("the number
	// of pages to fetch in a block is a parameter which can be specified
	// to the compiler"; the paper uses 4).
	PagesPerFetch int64

	// Releases enables release-hint insertion for the trailing references
	// of streaming groups in out-of-core nests.
	Releases bool

	// TwoVersionLoops enables the future-work extension of §4.1.1: loops
	// with compile-time-unknown bounds are versioned and the right
	// pipelining level chosen by a run-time bound test. It is modeled by
	// letting the analysis see run-time bounds, which yields exactly the
	// code the correct version would contain.
	TwoVersionLoops bool

	// DefaultEstTrip is the assumed trip count for unknown loop bounds.
	DefaultEstTrip int64

	// MaxDistancePages caps the prefetch lead distance, in pages per
	// reference, so prefetched data cannot flood memory. Zero derives a
	// cap from the machine's memory size.
	MaxDistancePages int64

	// Profile, if non-nil, feeds a recorded execution profile back into
	// scheduling (pass 2 of the two-pass mode): observed miss latencies
	// and per-iteration times replace the static hw.AvgPageRead distance
	// formula, indirect references may pipeline along outer driving
	// loops, and references static analysis cannot cover (short-trip
	// dense loops, opaque subscripts with a dominant run-time stride)
	// gain hints. References that do not match the profile keep their
	// static plan and are counted in Result.ProfileMismatches. With a
	// nil Profile the output is bit-identical to the static compiler.
	Profile *profile.Profile
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{PagesPerFetch: 4, Releases: true, DefaultEstTrip: 1024}
}

// PlanEntry describes what the compiler decided for one locality group.
type PlanEntry struct {
	Array    string
	Kind     locality.RefKind
	Pipeline string // loop variable prefetches pipeline along; "" if none
	StripLen int64  // iterations between prefetches
	Pages    int64  // pages per prefetch call
	Dist     int64  // lead distance, iterations of the pipeline loop
	Release  bool
	Covered  bool
	Profiled bool // true when the profile changed this entry's decision
}

// Result is the compiler's output.
type Result struct {
	Prog *ir.Program
	Plan []PlanEntry

	// ProfileMismatches counts reference sites without a matching record
	// and records without a matching site when Options.Profile was set
	// (e.g. a profile recorded on another kernel); mismatched sites keep
	// their static plan.
	ProfileMismatches int64
}

// PlanString renders the plan as a table for the compiler driver.
func (r *Result) PlanString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %-9s %9s %6s %8s %8s\n",
		"array", "kind", "pipeline", "strip-len", "pages", "distance", "release")
	for _, e := range r.Plan {
		pipe := e.Pipeline
		if !e.Covered {
			pipe = "(none)"
		}
		fmt.Fprintf(&b, "%-10s %-9s %-9s %9d %6d %8d %8v\n",
			e.Array, e.Kind, pipe, e.StripLen, e.Pages, e.Dist, e.Release)
	}
	return b.String()
}

// job is one planned prefetch stream attached to a pipeline loop.
type job struct {
	group    *locality.Group
	kind     locality.RefKind
	stripLen int64 // iterations of the pipeline loop per prefetch
	pages    int64 // pages per prefetch
	dist     int64 // lead distance in iterations (multiple of stripLen)
	release  bool
	top      *ir.Loop // outermost enclosing loop (budget domain)

	// Profile-guided extensions (all zero in a static compile):
	// pipe, when non-nil, is an outer driving loop the distance counts
	// iterations of while the hint itself stays planted per-iteration at
	// the attach loop (indirect refs whose latency cannot fit the inner
	// trip count). selfStride, when non-zero, emits self-relative hints
	// at ref.Idx + selfStride elements (opaque refs with a dominant
	// observed stride). arrPages caps the in-flight page estimate for
	// indirect streams, whose distinct target pages cannot exceed the
	// array. preloadPages, when non-zero, block-prefetches that many
	// pages of the target array before the top-level nest: a profile
	// whose fault count is on the order of the array's page count shows
	// cold misses over a small footprint, which cluster early (random
	// keys touch every page almost immediately) where no steady-state
	// lead distance can reach them. profiled marks the job for the plan
	// and vacuity guards.
	pipe         *ir.Loop
	selfStride   int64
	arrPages     int64
	preloadPages int64
	profiled     bool
}

// inFlightPages returns how many pages this job keeps in flight.
func (j *job) inFlightPages() int64 {
	if j.stripLen == 0 {
		return 0
	}
	n := j.dist / j.stripLen * j.pages
	if j.arrPages > 0 && n > j.arrPages {
		n = j.arrPages
	}
	return n
}

// Compile runs the pass. The program must already be resolved against the
// machine's page size (Compile resolves it if not).
func Compile(p *ir.Program, machine hw.Params, opt Options) (*Result, error) {
	if opt.PagesPerFetch <= 0 {
		opt.PagesPerFetch = 4
	}
	if opt.DefaultEstTrip <= 0 {
		opt.DefaultEstTrip = 1024
	}
	if opt.MaxDistancePages <= 0 {
		opt.MaxDistancePages = machine.Frames() / 8
		if opt.MaxDistancePages < opt.PagesPerFetch {
			opt.MaxDistancePages = opt.PagesPerFetch
		}
	}
	if !p.Resolved() {
		if err := p.Resolve(machine.PageSize); err != nil {
			return nil, err
		}
	}

	// The two-version extension: analysis sees run-time bounds (the
	// emitted code corresponds to the version the run-time test selects).
	restore := []*ir.Param{}
	if opt.TwoVersionLoops {
		for _, prm := range p.Params {
			if !prm.Known {
				prm.Known = true
				restore = append(restore, prm)
			}
		}
	}
	an := locality.Analyze(p, machine.PageSize, opt.DefaultEstTrip)
	for _, prm := range restore {
		prm.Known = false
	}

	t := &transform{
		an:       an,
		machine:  machine,
		opt:      opt,
		out:      cloneProgram(p),
		jobs:     map[*ir.Loop][]job{},
		preloads: map[*ir.Loop][]ir.Stmt{},
	}
	res := &Result{Prog: t.out}
	if opt.Profile != nil {
		t.guide = newGuide(p, opt.Profile, an, machine)
		res.ProfileMismatches = t.guide.mismatches
	}
	t.plan(res)
	t.budget(res)
	t.genPreloads()
	t.out.Body = t.rebuild(p.Body)
	if t.err != nil {
		return nil, t.err
	}
	return res, nil
}

// cloneProgram copies the program shell; arrays and parameters (and their
// slots) are shared, statement bodies are rebuilt by the transform.
func cloneProgram(p *ir.Program) *ir.Program {
	out := *p
	out.Name = p.Name + "+pf"
	return &out
}

// plan turns the analysis groups into jobs hanging off their pipeline
// loops, and fills in the human-readable plan. Groups that would emit a
// prefetch for the same address stream at the same loop (e.g. the read
// and write halves of count[key[i]]++) are deduplicated.
func (t *transform) plan(res *Result) {
	type jobSlot struct {
		l *ir.Loop
		i int
	}
	emitted := map[string]jobSlot{}
	for _, g := range t.an.Groups {
		lead := g.Leader
		entry := PlanEntry{Array: g.Arr.Name, Kind: lead.Kind}
		var (
			j  job
			at *ir.Loop
			ok bool
		)
		if L := t.an.PipelineLoop(lead); L != nil {
			j, at, ok = t.schedule(g, L)
		}
		if !ok && t.guide != nil {
			// Static analysis gave up (no pipeline loop, or no distance
			// fits any trip count) — the profile may still show a
			// prefetchable run-time stride.
			j, at, ok = t.strideJob(g)
		}
		if !ok {
			// §2.3 / §4.1.1: the lead distance does not fit the trip
			// count of any analyzable enclosing loop — the software
			// pipeline never gets started and the reference is missed.
			// This is the compiler mistake that costs APPBT its coverage
			// when inner bounds are only known at run time.
			res.Plan = append(res.Plan, entry)
			continue
		}
		entry.Covered = true
		entry.Pipeline = at.Var
		if j.pipe != nil {
			entry.Pipeline = j.pipe.Var
		}
		entry.StripLen = j.stripLen
		entry.Pages = j.pages
		entry.Dist = j.dist
		entry.Release = j.release
		entry.Profiled = j.profiled
		res.Plan = append(res.Plan, entry)

		sig := fmt.Sprintf("%p|%p|%s|%v|%d|%d", at, j.pipe, g.Arr.Name, g.Leader.Idx, j.stripLen, j.selfStride)
		if len(g.Leader.Path) > 0 {
			j.top = g.Leader.Path[0]
		}
		if s, ok := emitted[sig]; ok {
			// Another group already prefetches this stream here (e.g. the
			// write half of count[key[i]]++). A profile-guided schedule
			// supersedes a static duplicate: the group carrying the fault
			// evidence is not always the one planned first.
			if old := &t.jobs[s.l][s.i]; j.profiled && !old.profiled {
				*old = j
			}
			continue
		}
		t.jobs[at] = append(t.jobs[at], j)
		emitted[sig] = jobSlot{at, len(t.jobs[at]) - 1}
	}
}

// budget enforces a global memory budget on prefetch lead distances: the
// streams that run concurrently (those under the same top-level loop
// nest) may together keep at most a quarter of memory in flight, or
// prefetched pages would evict each other before use. Each stream keeps
// at least one strip of lead.
func (t *transform) budget(res *Result) {
	byTop := map[*ir.Loop][]*job{}
	for _, jobs := range t.jobs {
		for i := range jobs {
			j := &jobs[i]
			byTop[j.top] = append(byTop[j.top], j)
		}
	}
	limit := t.machine.Frames() / 4
	if limit < t.opt.PagesPerFetch {
		limit = t.opt.PagesPerFetch
	}
	for _, jobs := range byTop {
		var total int64
		for _, j := range jobs {
			total += j.inFlightPages()
		}
		if total <= limit {
			continue
		}
		factor := float64(limit) / float64(total)
		for _, j := range jobs {
			strips := j.dist / j.stripLen
			scaled := int64(float64(strips) * factor)
			if scaled < 1 {
				scaled = 1
			}
			j.dist = scaled * j.stripLen
		}
	}
	// Reflect the final distances in the plan (entries are matched by
	// array name and strip length; close enough for reporting).
	for i := range res.Plan {
		e := &res.Plan[i]
		for _, jobs := range t.jobs {
			for k := range jobs {
				j := &jobs[k]
				if j.group.Arr.Name == e.Array && j.stripLen == e.StripLen && j.dist < e.Dist {
					e.Dist = j.dist
				}
			}
		}
	}
}

// schedule plans one group's prefetch stream. It starts at the locality
// analysis's pipeline loop and, when the lead distance would exceed the
// loop's trip count (the pipeline could never get started), moves outward
// to the next enclosing loop the reference varies with — exactly the
// paper's "first surrounding loop" rule applied transitively. It reports
// failure only when no enclosing analyzable loop can host the pipeline.
func (t *transform) schedule(g *locality.Group, first *ir.Loop) (job, *ir.Loop, bool) {
	lead := g.Leader
	ps := t.machine.PageSize

	// Build the outward candidate list starting at the analysis's choice.
	var candidates []*ir.Loop
	started := false
	for i := len(lead.Path) - 1; i >= 0; i-- {
		l := lead.Path[i]
		if l == first {
			started = true
		}
		if !started {
			continue
		}
		if lead.Kind == locality.Indirect {
			// Indirect prefetch addresses must be generated where the
			// index value is available: statically, only the innermost
			// driving loop can host them (Figure 2's a[b[i+dist]]). With
			// a profile, outer driving loops are candidates too — the
			// hint stays planted where the index is computed, but the
			// distance counts iterations of the outer loop, which is how
			// a latency larger than the inner trip gets hidden.
			if _, sp := t.guide.groupRec(g); lead.IndirectSlots[l.Slot] && (len(candidates) == 0 || sp != nil) {
				candidates = append(candidates, l)
			}
		} else if lead.Coeffs[l.Slot] != 0 {
			candidates = append(candidates, l)
		}
	}

	for ci, L := range candidates {
		trip, _ := t.an.TripCount(L)
		j := job{group: g, kind: lead.Kind}
		if lead.Kind == locality.Indirect {
			j.stripLen = 1
			j.pages = 1
			j.dist = t.latencyIters(L, 1)
			if d := t.guide.groupDist(g, L); d > 0 {
				// Observed stall over observed fault-free work per
				// iteration replaces the static model: the model's
				// operation-count estimate can run orders of magnitude off
				// in either direction, and an oversized lead cycles a small
				// indirect target through memory before use. The headroom
				// factor covers the disk contention the profiling run
				// (which issues no prefetches) cannot see.
				j.dist = d * contentionHeadroom
				j.profiled = true
			}
			if j.dist >= trip {
				if ci+1 < len(candidates) {
					continue // pipeline across the next loop out
				}
				if trip/2 >= 1 {
					j.dist = trip / 2 // degrade: hide part of the latency
				} else {
					return job{}, nil, false
				}
			}
			if inner := lead.Innermost(); inner != L {
				// Outer-loop pipeline: plant per-iteration hints at the
				// innermost loop (all subscript variables live there) with
				// the distance applied to L's variable.
				j.pipe = L
				j.profiled = true
				t.sizeIndirect(g, &j)
				return j, inner, true
			}
			if j.profiled {
				t.sizeIndirect(g, &j)
			}
		} else {
			strideB := lead.StrideBytes(L)
			if strideB < 0 {
				strideB = -strideB
			}
			j.stripLen = t.opt.PagesPerFetch * ps / strideB
			if j.stripLen < 1 {
				j.stripLen = 1
			}
			j.pages = (j.stripLen*strideB + ps - 1) / ps
			j.dist = t.latencyIters(L, j.stripLen)
			if d := t.guide.groupDist(g, L); d > 0 {
				// Observed latency over observed per-iteration work with
				// contention headroom, rounded up to whole strips; the
				// budget cap below applies to it the same as to the
				// static distance.
				d *= contentionHeadroom
				j.dist = (d + j.stripLen - 1) / j.stripLen * j.stripLen
				j.profiled = true
			}
			// Cap the lead distance by the memory budget.
			if maxStrips := t.opt.MaxDistancePages / j.pages; maxStrips >= 1 {
				if lim := maxStrips * j.stripLen; j.dist > lim {
					j.dist = lim
				}
			}
			if j.dist >= trip {
				if ci+1 < len(candidates) {
					continue
				}
				if trip > j.stripLen {
					j.dist = (trip - 1) / j.stripLen * j.stripLen // partial hiding
				} else if _, sp := t.guide.groupRec(g); sp != nil && sp.Faults > 0 && trip/2 >= 1 {
					// The whole loop fits one strip, so static scheduling
					// gives up — but the profile says the reference
					// faults. Shrink the strip to half the trip count:
					// smaller blocks, but the pipeline starts.
					j.stripLen = trip / 2
					j.pages = (j.stripLen*strideB + ps - 1) / ps
					j.dist = j.stripLen
					j.profiled = true
				} else {
					return job{}, nil, false
				}
			}
			j.release = t.opt.Releases && t.releasable(g, L)
		}
		return j, L, true
	}
	return job{}, nil, false
}

// sizeIndirect fills a profiled indirect job's footprint fields: the
// in-flight cap, and — when the profile shows cold misses over a target
// array comparable to the prefetch budget — a whole-array preload. A
// fault count on the order of the array's page count means each page
// missed about once; with randomized keys those misses land in the
// nest's first iterations, before any steady-state lead can cover them.
func (t *transform) sizeIndirect(g *locality.Group, j *job) {
	ps := t.machine.PageSize
	j.arrPages = (g.Arr.Bytes() + ps - 1) / ps
	_, sp := t.guide.groupRec(g)
	if sp == nil {
		return
	}
	lim := t.machine.Frames() / 4
	if j.arrPages <= 2*lim && sp.Faults <= 2*j.arrPages {
		j.preloadPages = j.arrPages
		if j.preloadPages > lim {
			j.preloadPages = lim
		}
	}
}

// genPreloads turns the jobs' preload requests into block prefetches
// planted before their top-level nests, one per (nest, array).
func (t *transform) genPreloads() {
	seen := map[string]bool{}
	for _, jobs := range t.jobs {
		for _, j := range jobs {
			if j.preloadPages == 0 || j.top == nil {
				continue
			}
			key := fmt.Sprintf("%p|%s", j.top, j.group.Arr.Name)
			if seen[key] {
				continue
			}
			seen[key] = true
			idx := make([]ir.IExpr, len(j.group.Leader.Idx))
			for i := range idx {
				idx[i] = ir.Int(0)
			}
			t.preloads[j.top] = append(t.preloads[j.top], ir.Prefetch{
				Arr:   j.group.Arr,
				Idx:   idx,
				Pages: ir.Int(j.preloadPages),
			})
		}
	}
}

// latencyIters returns the prefetch lead distance, in pipeline-loop
// iterations rounded up to a whole number of strips: enough iterations
// that the work between issue and use covers the full fault latency.
func (t *transform) latencyIters(L *ir.Loop, stripLen int64) int64 {
	iterOps := t.an.EstimateIterOps(L)
	latency := int64(t.machine.AvgPageRead() + t.machine.FaultServiceTime)
	perIter := iterOps * int64(t.machine.OpTime)
	if perIter < 1 {
		perIter = 1
	}
	iters := (latency + perIter - 1) / perIter
	if iters < 1 {
		iters = 1
	}
	strips := (iters + stripLen - 1) / stripLen
	return strips * stripLen
}

// releasable reports whether a group's trailing reference should carry a
// release: the pipeline loop is a top-level streaming pass (nothing
// outside it can re-reference the data soon) and the stream is
// out-of-core, so the pages are dead once the trailing reference passes.
// This conservative rule matches the paper's "not aggressive" release
// insertion, which produced significant releases only for the streaming
// applications (BUK, EMBAR).
func (t *transform) releasable(g *locality.Group, L *ir.Loop) bool {
	lead := g.Leader
	if len(lead.Path) == 0 || lead.Path[0] != L {
		return false
	}
	return t.an.FootprintUpTo(lead, L) > t.machine.MemoryBytes/2
}

// transform carries the rebuild state.
type transform struct {
	an       *locality.Analysis
	machine  hw.Params
	opt      Options
	out      *ir.Program
	jobs     map[*ir.Loop][]job
	preloads map[*ir.Loop][]ir.Stmt // whole-array prologs, keyed by top loop
	guide    *guide                 // non-nil under Options.Profile
	err      error
}
