// Package compiler is the prefetching compiler of the paper: it analyzes
// a program's loop nests with the locality analysis, decides which
// references need prefetching and along which loop to software-pipeline
// them, strip-mines loops so that spatial references are prefetched once
// per block of pages rather than once per iteration, schedules prefetches
// a latency-covering distance ahead, converts pipeline prologs into block
// prefetches, and emits release hints for the trailing references of
// streaming groups, bundled with prefetches into single calls.
//
// The output is a transformed copy of the program; the original is left
// untouched, so "original" and "prefetching" versions of an application
// can run side by side, as in the paper's O and P bars.
package compiler

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/locality"
)

// Options configure the pass.
type Options struct {
	// PagesPerFetch is the block size for spatial prefetches ("the number
	// of pages to fetch in a block is a parameter which can be specified
	// to the compiler"; the paper uses 4).
	PagesPerFetch int64

	// Releases enables release-hint insertion for the trailing references
	// of streaming groups in out-of-core nests.
	Releases bool

	// TwoVersionLoops enables the future-work extension of §4.1.1: loops
	// with compile-time-unknown bounds are versioned and the right
	// pipelining level chosen by a run-time bound test. It is modeled by
	// letting the analysis see run-time bounds, which yields exactly the
	// code the correct version would contain.
	TwoVersionLoops bool

	// DefaultEstTrip is the assumed trip count for unknown loop bounds.
	DefaultEstTrip int64

	// MaxDistancePages caps the prefetch lead distance, in pages per
	// reference, so prefetched data cannot flood memory. Zero derives a
	// cap from the machine's memory size.
	MaxDistancePages int64
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{PagesPerFetch: 4, Releases: true, DefaultEstTrip: 1024}
}

// PlanEntry describes what the compiler decided for one locality group.
type PlanEntry struct {
	Array    string
	Kind     locality.RefKind
	Pipeline string // loop variable prefetches pipeline along; "" if none
	StripLen int64  // iterations between prefetches
	Pages    int64  // pages per prefetch call
	Dist     int64  // lead distance, iterations of the pipeline loop
	Release  bool
	Covered  bool
}

// Result is the compiler's output.
type Result struct {
	Prog *ir.Program
	Plan []PlanEntry
}

// PlanString renders the plan as a table for the compiler driver.
func (r *Result) PlanString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %-9s %9s %6s %8s %8s\n",
		"array", "kind", "pipeline", "strip-len", "pages", "distance", "release")
	for _, e := range r.Plan {
		pipe := e.Pipeline
		if !e.Covered {
			pipe = "(none)"
		}
		fmt.Fprintf(&b, "%-10s %-9s %-9s %9d %6d %8d %8v\n",
			e.Array, e.Kind, pipe, e.StripLen, e.Pages, e.Dist, e.Release)
	}
	return b.String()
}

// job is one planned prefetch stream attached to a pipeline loop.
type job struct {
	group    *locality.Group
	kind     locality.RefKind
	stripLen int64 // iterations of the pipeline loop per prefetch
	pages    int64 // pages per prefetch
	dist     int64 // lead distance in iterations (multiple of stripLen)
	release  bool
	top      *ir.Loop // outermost enclosing loop (budget domain)
}

// inFlightPages returns how many pages this job keeps in flight.
func (j *job) inFlightPages() int64 {
	if j.stripLen == 0 {
		return 0
	}
	return j.dist / j.stripLen * j.pages
}

// Compile runs the pass. The program must already be resolved against the
// machine's page size (Compile resolves it if not).
func Compile(p *ir.Program, machine hw.Params, opt Options) (*Result, error) {
	if opt.PagesPerFetch <= 0 {
		opt.PagesPerFetch = 4
	}
	if opt.DefaultEstTrip <= 0 {
		opt.DefaultEstTrip = 1024
	}
	if opt.MaxDistancePages <= 0 {
		opt.MaxDistancePages = machine.Frames() / 8
		if opt.MaxDistancePages < opt.PagesPerFetch {
			opt.MaxDistancePages = opt.PagesPerFetch
		}
	}
	if !p.Resolved() {
		if err := p.Resolve(machine.PageSize); err != nil {
			return nil, err
		}
	}

	// The two-version extension: analysis sees run-time bounds (the
	// emitted code corresponds to the version the run-time test selects).
	restore := []*ir.Param{}
	if opt.TwoVersionLoops {
		for _, prm := range p.Params {
			if !prm.Known {
				prm.Known = true
				restore = append(restore, prm)
			}
		}
	}
	an := locality.Analyze(p, machine.PageSize, opt.DefaultEstTrip)
	for _, prm := range restore {
		prm.Known = false
	}

	t := &transform{
		an:      an,
		machine: machine,
		opt:     opt,
		out:     cloneProgram(p),
		jobs:    map[*ir.Loop][]job{},
	}
	res := &Result{Prog: t.out}
	t.plan(res)
	t.budget(res)
	t.out.Body = t.rebuild(p.Body)
	if t.err != nil {
		return nil, t.err
	}
	return res, nil
}

// cloneProgram copies the program shell; arrays and parameters (and their
// slots) are shared, statement bodies are rebuilt by the transform.
func cloneProgram(p *ir.Program) *ir.Program {
	out := *p
	out.Name = p.Name + "+pf"
	return &out
}

// plan turns the analysis groups into jobs hanging off their pipeline
// loops, and fills in the human-readable plan. Groups that would emit a
// prefetch for the same address stream at the same loop (e.g. the read
// and write halves of count[key[i]]++) are deduplicated.
func (t *transform) plan(res *Result) {
	emitted := map[string]bool{}
	for _, g := range t.an.Groups {
		lead := g.Leader
		entry := PlanEntry{Array: g.Arr.Name, Kind: lead.Kind}
		L := t.an.PipelineLoop(lead)
		if L == nil {
			res.Plan = append(res.Plan, entry)
			continue
		}
		entry.Covered = true
		entry.Pipeline = L.Var

		j, at, ok := t.schedule(g, L)
		if !ok {
			// §2.3 / §4.1.1: the lead distance does not fit the trip
			// count of any analyzable enclosing loop — the software
			// pipeline never gets started and the reference is missed.
			// This is the compiler mistake that costs APPBT its coverage
			// when inner bounds are only known at run time.
			entry.Covered = false
			entry.Pipeline = ""
			res.Plan = append(res.Plan, entry)
			continue
		}
		entry.Pipeline = at.Var
		entry.StripLen = j.stripLen
		entry.Pages = j.pages
		entry.Dist = j.dist
		entry.Release = j.release
		res.Plan = append(res.Plan, entry)

		sig := fmt.Sprintf("%p|%s|%v|%d", at, g.Arr.Name, g.Leader.Idx, j.stripLen)
		if emitted[sig] {
			continue // another group already prefetches this stream here
		}
		emitted[sig] = true
		if len(g.Leader.Path) > 0 {
			j.top = g.Leader.Path[0]
		}
		t.jobs[at] = append(t.jobs[at], j)
	}
}

// budget enforces a global memory budget on prefetch lead distances: the
// streams that run concurrently (those under the same top-level loop
// nest) may together keep at most a quarter of memory in flight, or
// prefetched pages would evict each other before use. Each stream keeps
// at least one strip of lead.
func (t *transform) budget(res *Result) {
	byTop := map[*ir.Loop][]*job{}
	for _, jobs := range t.jobs {
		for i := range jobs {
			j := &jobs[i]
			byTop[j.top] = append(byTop[j.top], j)
		}
	}
	limit := t.machine.Frames() / 4
	if limit < t.opt.PagesPerFetch {
		limit = t.opt.PagesPerFetch
	}
	for _, jobs := range byTop {
		var total int64
		for _, j := range jobs {
			total += j.inFlightPages()
		}
		if total <= limit {
			continue
		}
		factor := float64(limit) / float64(total)
		for _, j := range jobs {
			strips := j.dist / j.stripLen
			scaled := int64(float64(strips) * factor)
			if scaled < 1 {
				scaled = 1
			}
			j.dist = scaled * j.stripLen
		}
	}
	// Reflect the final distances in the plan (entries are matched by
	// array name and strip length; close enough for reporting).
	for i := range res.Plan {
		e := &res.Plan[i]
		for _, jobs := range t.jobs {
			for k := range jobs {
				j := &jobs[k]
				if j.group.Arr.Name == e.Array && j.stripLen == e.StripLen && j.dist < e.Dist {
					e.Dist = j.dist
				}
			}
		}
	}
}

// schedule plans one group's prefetch stream. It starts at the locality
// analysis's pipeline loop and, when the lead distance would exceed the
// loop's trip count (the pipeline could never get started), moves outward
// to the next enclosing loop the reference varies with — exactly the
// paper's "first surrounding loop" rule applied transitively. It reports
// failure only when no enclosing analyzable loop can host the pipeline.
func (t *transform) schedule(g *locality.Group, first *ir.Loop) (job, *ir.Loop, bool) {
	lead := g.Leader
	ps := t.machine.PageSize

	// Build the outward candidate list starting at the analysis's choice.
	var candidates []*ir.Loop
	started := false
	for i := len(lead.Path) - 1; i >= 0; i-- {
		l := lead.Path[i]
		if l == first {
			started = true
		}
		if !started {
			continue
		}
		if lead.Kind == locality.Indirect {
			// Indirect prefetch addresses must be generated where the
			// index value is available: only the innermost driving loop
			// can host them (Figure 2's a[b[i+dist]]).
			if lead.IndirectSlots[l.Slot] && len(candidates) == 0 {
				candidates = append(candidates, l)
			}
		} else if lead.Coeffs[l.Slot] != 0 {
			candidates = append(candidates, l)
		}
	}

	for ci, L := range candidates {
		trip, _ := t.an.TripCount(L)
		j := job{group: g, kind: lead.Kind}
		if lead.Kind == locality.Indirect {
			j.stripLen = 1
			j.pages = 1
			j.dist = t.latencyIters(L, 1)
			if j.dist >= trip {
				if ci+1 < len(candidates) {
					continue // pipeline across the next loop out
				}
				if trip/2 >= 1 {
					j.dist = trip / 2 // degrade: hide part of the latency
				} else {
					return job{}, nil, false
				}
			}
		} else {
			strideB := lead.StrideBytes(L)
			if strideB < 0 {
				strideB = -strideB
			}
			j.stripLen = t.opt.PagesPerFetch * ps / strideB
			if j.stripLen < 1 {
				j.stripLen = 1
			}
			j.pages = (j.stripLen*strideB + ps - 1) / ps
			j.dist = t.latencyIters(L, j.stripLen)
			// Cap the lead distance by the memory budget.
			if maxStrips := t.opt.MaxDistancePages / j.pages; maxStrips >= 1 {
				if lim := maxStrips * j.stripLen; j.dist > lim {
					j.dist = lim
				}
			}
			if j.dist >= trip {
				if ci+1 < len(candidates) {
					continue
				}
				if trip > j.stripLen {
					j.dist = (trip - 1) / j.stripLen * j.stripLen // partial hiding
				} else {
					return job{}, nil, false
				}
			}
			j.release = t.opt.Releases && t.releasable(g, L)
		}
		return j, L, true
	}
	return job{}, nil, false
}

// latencyIters returns the prefetch lead distance, in pipeline-loop
// iterations rounded up to a whole number of strips: enough iterations
// that the work between issue and use covers the full fault latency.
func (t *transform) latencyIters(L *ir.Loop, stripLen int64) int64 {
	iterOps := t.an.EstimateIterOps(L)
	latency := int64(t.machine.AvgPageRead() + t.machine.FaultServiceTime)
	perIter := iterOps * int64(t.machine.OpTime)
	if perIter < 1 {
		perIter = 1
	}
	iters := (latency + perIter - 1) / perIter
	if iters < 1 {
		iters = 1
	}
	strips := (iters + stripLen - 1) / stripLen
	return strips * stripLen
}

// releasable reports whether a group's trailing reference should carry a
// release: the pipeline loop is a top-level streaming pass (nothing
// outside it can re-reference the data soon) and the stream is
// out-of-core, so the pages are dead once the trailing reference passes.
// This conservative rule matches the paper's "not aggressive" release
// insertion, which produced significant releases only for the streaming
// applications (BUK, EMBAR).
func (t *transform) releasable(g *locality.Group, L *ir.Loop) bool {
	lead := g.Leader
	if len(lead.Path) == 0 || lead.Path[0] != L {
		return false
	}
	return t.an.FootprintUpTo(lead, L) > t.machine.MemoryBytes/2
}

// transform carries the rebuild state.
type transform struct {
	an      *locality.Analysis
	machine hw.Params
	opt     Options
	out     *ir.Program
	jobs    map[*ir.Loop][]job
	err     error
}
