package compiler

import (
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/locality"
	"repro/internal/profile"
)

// guide matches a recorded execution profile (pass 1) against the
// program being compiled (pass 2). Matching is by stable site key over
// the canonical enumeration, which corresponds 1:1 to the locality
// analysis's reference list; references without a matching record — and
// records matching no reference, e.g. a profile recorded on a different
// kernel — degrade to the static plan and are tallied in mismatches.
type guide struct {
	an         *locality.Analysis
	machine    hw.Params
	byRef      map[*locality.Ref]*profile.SiteProfile
	mismatches int64
}

func newGuide(p *ir.Program, prof *profile.Profile, an *locality.Analysis, machine hw.Params) *guide {
	g := &guide{an: an, machine: machine, byRef: map[*locality.Ref]*profile.SiteProfile{}}
	sites := profile.SitesOf(p)
	if prof.PageSize != machine.PageSize || len(sites) != len(an.Refs) {
		// Recorded on a different memory geometry, or the enumeration is
		// out of sync with the analysis: nothing can be trusted.
		g.mismatches = int64(len(sites) + len(prof.Sites))
		return g
	}
	recs := make(map[string]*profile.SiteProfile, len(prof.Sites))
	for i := range prof.Sites {
		recs[prof.Sites[i].Key] = &prof.Sites[i]
	}
	used := make(map[string]bool, len(sites))
	for i, s := range sites {
		if sp := recs[s.Key]; sp != nil {
			g.byRef[an.Refs[i]] = sp
			used[s.Key] = true
		} else {
			g.mismatches++
		}
	}
	for k := range recs {
		if !used[k] {
			g.mismatches++
		}
	}
	return g
}

// rec returns the profile record for a reference, or nil. Safe on a nil
// guide (static compile).
func (g *guide) rec(r *locality.Ref) *profile.SiteProfile {
	if g == nil {
		return nil
	}
	return g.byRef[r]
}

// groupRec returns the group member whose record carries the group's
// fault signal — the members share one page stream, but only the first
// reference to touch new data takes the faults, and that is not always
// the group leader (count[key[i]]++ reads before it writes). Falls back
// to the leader's record (possibly nil) when no member faulted.
func (g *guide) groupRec(grp *locality.Group) (*locality.Ref, *profile.SiteProfile) {
	if g == nil {
		return grp.Leader, nil
	}
	bestRef, best := grp.Leader, g.rec(grp.Leader)
	for _, m := range grp.Members {
		if sp := g.rec(m); sp != nil && (best == nil || sp.Faults > best.Faults) {
			bestRef, best = m, sp
		}
	}
	return bestRef, best
}

// groupDist is distIters over the group's fault-carrying member.
func (g *guide) groupDist(grp *locality.Group, L *ir.Loop) int64 {
	if g == nil {
		return 0
	}
	r, sp := g.groupRec(grp)
	return g.distItersRec(r, sp, L)
}

// distIters returns the profile-derived prefetch lead distance, in
// iterations of L: the observed mean miss latency divided by the
// observed fault-free time per iteration of L (the per-execution gap of
// the site times the trip counts of the loops between L and the site).
// Zero means the profile has no usable signal for r.
func (g *guide) distIters(r *locality.Ref, L *ir.Loop) int64 {
	if g == nil {
		return 0
	}
	return g.distItersRec(r, g.rec(r), L)
}

func (g *guide) distItersRec(r *locality.Ref, sp *profile.SiteProfile, L *ir.Loop) int64 {
	if sp == nil || sp.Faults == 0 || sp.InterN == 0 {
		return 0
	}
	perInner := sp.AvgInterTicks()
	if perInner < 1 {
		perInner = 1
	}
	mult := int64(1)
	inside := false
	for _, pl := range r.Path {
		if inside {
			if tr, _ := g.an.TripCount(pl); tr > 0 {
				mult *= tr
			}
		}
		if pl == L {
			inside = true
		}
	}
	perL := perInner * mult
	iters := (sp.AvgStallTicks() + perL - 1) / perL
	if iters < 1 {
		iters = 1
	}
	return iters
}

// minStrideFaults and minStrideFrac gate self-relative stride hints: the
// site must have faulted enough for the latency estimate to mean
// anything, and one run-time stride must clearly dominate, or the hints
// would mostly fetch the wrong pages.
const (
	minStrideFaults = 4
	minStrideFrac   = 0.75
)

// contentionHeadroom scales profile-observed stall latencies into
// prefetch distances. The profiling run issues no prefetches, so its
// misses see an idle disk; the prefetching run keeps the disk queue
// busy, roughly doubling the latency each fetch must hide.
const contentionHeadroom = 2

// strideJob builds a self-relative per-iteration hint stream for a
// reference static analysis cannot pipeline at all, when the profile
// shows one dominant run-time stride: each iteration hints the address
// the reference itself will touch dist iterations later. This is the
// profile-guided answer to opaque subscripts (and APPBT-style bounds)
// the paper concedes to demand paging.
func (t *transform) strideJob(g *locality.Group) (job, *ir.Loop, bool) {
	lead := g.Leader
	plant := lead.Innermost()
	if plant == nil {
		return job{}, nil, false
	}
	bestRef, sp := t.guide.groupRec(g)
	if sp == nil || sp.Faults < minStrideFaults {
		return job{}, nil, false
	}
	stride, frac := sp.DominantStride()
	if stride == 0 || frac < minStrideFrac {
		return job{}, nil, false
	}
	dist := t.guide.distItersRec(bestRef, sp, plant) * contentionHeadroom
	if dist < 1 {
		dist = 1
	}
	abs := stride
	if abs < 0 {
		abs = -abs
	}
	// Cap the lead so the hinted address stays within the distance
	// budget's reach of the demand stream.
	elemsPerPage := t.machine.PageSize / ir.ElemSize
	if maxD := t.opt.MaxDistancePages * elemsPerPage / abs; maxD >= 1 && dist > maxD {
		dist = maxD
	}
	trip, _ := t.an.TripCount(plant)
	if dist >= trip {
		if trip/2 < 1 {
			return job{}, nil, false
		}
		dist = trip / 2
	}
	j := job{
		group:      g,
		kind:       lead.Kind,
		stripLen:   1,
		pages:      1,
		dist:       dist,
		selfStride: stride * dist,
		profiled:   true,
		arrPages:   (g.Arr.Bytes() + t.machine.PageSize - 1) / t.machine.PageSize,
	}
	return j, plant, true
}
