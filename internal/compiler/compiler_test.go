package compiler

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// machine returns a small test platform: 64 frames.
func machine() hw.Params {
	p := hw.Default()
	p.MemoryBytes = 64 * p.PageSize
	return p
}

// stream builds a simple streaming sum over n float64s.
func stream(n int64) *ir.Program {
	p := ir.NewProgram("stream")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "s"}, ir.LoadF(a, i))),
		),
	}
	return p
}

// run executes a program on a fresh system, returning the VM and the
// run-time layer for inspection.
func run(t *testing.T, prog *ir.Program, mp hw.Params, seedVal func(int64) float64, rtOn bool) (*vm.VM, *rt.Layer, *exec.Env) {
	t.Helper()
	c := sim.NewClock()
	fs := stripefs.New(c, mp, nil)
	if err := prog.Resolve(mp.PageSize); err != nil {
		t.Fatal(err)
	}
	file, err := fs.Create(prog.Name, prog.TotalBytes(mp.PageSize)/mp.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, mp, file)
	layer := rt.Register(v, rtOn)
	m, err := exec.New(prog, v, layer)
	if err != nil {
		t.Fatal(err)
	}
	if seedVal != nil {
		exec.SeedF64(file, mp.PageSize, prog.Arrays[0], seedVal)
	}
	env := m.Run()
	v.Finish()
	return v, layer, env
}

func TestStreamCompilesAndWins(t *testing.T) {
	mp := machine()
	const n = 256 * 512 // 256 pages = 4× memory
	orig := stream(n)
	res, err := Compile(stream(n), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	want := float64(n) * 0.5
	vO, _, envO := run(t, orig, mp, func(int64) float64 { return 0.5 }, true)
	vP, _, envP := run(t, res.Prog, mp, func(int64) float64 { return 0.5 }, true)

	// Semantics preserved.
	sO := envO.Floats[0]
	sP := envP.Floats[0]
	if sO != want || sP != want {
		t.Fatalf("sums: original %v, prefetch %v, want %v", sO, sP, want)
	}

	tO, tP := vO.Times().Total(), vP.Times().Total()
	if tP >= tO {
		t.Fatalf("prefetching did not win: O=%v P=%v", tO, tP)
	}
	// Most stall time should be gone on a pure stream.
	if vP.Times().Idle*2 > vO.Times().Idle {
		t.Fatalf("prefetching left too much stall: O idle %v, P idle %v",
			vO.Times().Idle, vP.Times().Idle)
	}
	// Coverage should be essentially total.
	if cov := vP.Stats().CoverageFactor(); cov < 0.95 {
		t.Fatalf("coverage %.3f, want ≥0.95", cov)
	}
}

func TestPlanShape(t *testing.T) {
	mp := machine()
	res, err := Compile(stream(256*512), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 1 {
		t.Fatalf("plan has %d entries, want 1: %v", len(res.Plan), res.Plan)
	}
	e := res.Plan[0]
	if !e.Covered || e.Pipeline != "i" {
		t.Fatalf("plan entry %+v, want covered at i", e)
	}
	// stride 8 B/iter, 4-page blocks → strip of 2048 iterations.
	if e.StripLen != 2048 || e.Pages != 4 {
		t.Fatalf("strip/pages = %d/%d, want 2048/4", e.StripLen, e.Pages)
	}
	if e.Dist%e.StripLen != 0 || e.Dist < e.StripLen {
		t.Fatalf("distance %d not a positive multiple of strip %d", e.Dist, e.StripLen)
	}
	if !e.Release {
		t.Fatal("4×-memory stream should get releases")
	}
	if !strings.Contains(res.PlanString(), "dense") {
		t.Fatal("PlanString missing kind")
	}
}

func TestTransformedShapeHasPrologAndStrips(t *testing.T) {
	mp := machine()
	res, err := Compile(stream(256*512), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Prog)
	if !strings.Contains(out, "prefetch_block(&a[min(0,") {
		t.Fatalf("no prolog block prefetch in:\n%s", out)
	}
	if !strings.Contains(out, "prefetch_release_block") {
		t.Fatalf("no bundled prefetch/release in:\n%s", out)
	}
	// Strip mining introduces a new loop variable i0.
	if !strings.Contains(out, "for (i0 = ") {
		t.Fatalf("no strip loop in:\n%s", out)
	}
	// The original program is untouched.
	var prefetches int
	ir.WalkStmts(stream(1).Body, func(s ir.Stmt) {
		switch s.(type) {
		case ir.Prefetch, ir.PrefetchRelease:
			prefetches++
		}
	})
	if prefetches != 0 {
		t.Fatal("original program contains prefetches")
	}
}

// aElems is the extent of the indirect target array in figure2 nests.
const aElems = 16 * 1024

// figure2 reconstructs the paper's Figure 2(a) loop nest, with rows rows
// in the c matrix (and in the b index array, which drives a[b[i]]).
func figure2(rows, nVal int64, nKnown bool) *ir.Program {
	p := ir.NewProgram("fig2")
	n := p.NewParam("N", nVal, nKnown)
	a := p.NewArrayF("a", ir.Int(aElems))
	b := p.NewArrayI("b", ir.Int(rows))
	cc := p.NewArrayF("c", ir.Int(rows), n)
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	s := p.NewScalarF("t")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(rows), 1,
			ir.For(j, ir.Int(0), n, 1,
				ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "t"}, ir.LoadF(cc, i, j))),
			),
			ir.StoreF(a, []ir.IExpr{ir.LoadI(b, i)},
				ir.AddF(ir.LoadF(a, ir.LoadI(b, i)), ir.Flt(1))),
		),
	}
	return p
}

func TestFigure2DoubleStripMine(t *testing.T) {
	// b[i] (8 B/iter) and c[i][j] (512 B/iter of i) need different fetch
	// rates: the i loop must be strip-mined twice, as in Figure 2(b).
	mp := machine()
	res, err := Compile(figure2(20000, 64, true), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(res.Prog)
	if !strings.Contains(out, "for (i0 = ") || !strings.Contains(out, "for (i1 = ") {
		t.Fatalf("expected two strip levels (i0, i1) in:\n%s", out)
	}
	// The indirect a[b[i]] reference is prefetched per iteration with the
	// subscript's i advanced by the distance.
	if !strings.Contains(out, "prefetch_block(&a[b[min(") {
		t.Fatalf("no indirect prefetch a[b[...]] in:\n%s", out)
	}
}

func TestFigure2Runs(t *testing.T) {
	mp := machine()
	const rows, nVal = 20000, 64
	prog := figure2(rows, nVal, true)
	res, err := Compile(figure2(rows, nVal, true), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	seed := func(file *stripefs.File, p *ir.Program) {
		exec.SeedI64(file, mp.PageSize, p.Arrays[1], func(i int64) int64 { return (i * 37) % aElems })
		exec.SeedF64(file, mp.PageSize, p.Arrays[2], func(i int64) float64 { return 1 })
	}

	runOne := func(p *ir.Program) (*vm.VM, float64) {
		c := sim.NewClock()
		fs := stripefs.New(c, mp, nil)
		if err := p.Resolve(mp.PageSize); err != nil {
			t.Fatal(err)
		}
		file, _ := fs.Create(p.Name, p.TotalBytes(mp.PageSize)/mp.PageSize)
		v := vm.New(c, mp, file)
		layer := rt.Register(v, true)
		m, err := exec.New(p, v, layer)
		if err != nil {
			t.Fatal(err)
		}
		seed(file, p)
		env := m.Run()
		v.Finish()
		return v, env.Floats[0]
	}

	vO, sO := runOne(prog)
	vP, sP := runOne(res.Prog)
	if sO != sP || sO != float64(rows*nVal) {
		t.Fatalf("results differ: O=%v P=%v want %v", sO, sP, float64(rows*nVal))
	}
	if vP.Times().Total() >= vO.Times().Total() {
		t.Fatalf("prefetching lost on figure2: O=%v P=%v", vO.Times().Total(), vP.Times().Total())
	}
}

func TestSymbolicBoundsHurtCoverageAndTwoVersionFixes(t *testing.T) {
	mp := machine()
	// N is actually small (4): one c row is 32 B. With N unknown the
	// compiler mispipelines c along j, the software pipeline never gets
	// started (distance exceeds the trip count), the reference is missed,
	// and coverage craters; the two-version extension recovers it.
	mk := func() *ir.Program { return figure2(100000, 4, false) }

	resBad, err := Compile(mk(), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optFix := DefaultOptions()
	optFix.TwoVersionLoops = true
	resFix, err := Compile(mk(), mp, optFix)
	if err != nil {
		t.Fatal(err)
	}

	seed := func(file *stripefs.File, p *ir.Program) {
		exec.SeedI64(file, mp.PageSize, p.Arrays[1], func(i int64) int64 { return (i * 37) % aElems })
		exec.SeedF64(file, mp.PageSize, p.Arrays[2], func(i int64) float64 { return 1 })
	}
	cover := func(p *ir.Program) float64 {
		c := sim.NewClock()
		fs := stripefs.New(c, mp, nil)
		if err := p.Resolve(mp.PageSize); err != nil {
			t.Fatal(err)
		}
		file, _ := fs.Create(p.Name, p.TotalBytes(mp.PageSize)/mp.PageSize)
		v := vm.New(c, mp, file)
		layer := rt.Register(v, true)
		m, err := exec.New(p, v, layer)
		if err != nil {
			t.Fatal(err)
		}
		seed(file, p)
		m.Run()
		v.Finish()
		return v.Stats().CoverageFactor()
	}

	covBad := cover(resBad.Prog)
	covFix := cover(resFix.Prog)
	if covFix <= covBad {
		t.Fatalf("two-version loops did not improve coverage: bad=%.3f fix=%.3f", covBad, covFix)
	}
	if covFix < 0.8 {
		t.Fatalf("fixed coverage %.3f, want ≥0.8", covFix)
	}
}

func TestNoJobsMeansUnchangedProgram(t *testing.T) {
	// A program over < 1 page of data gets no prefetches at all.
	mp := machine()
	p := ir.NewProgram("tiny")
	a := p.NewArrayF("a", ir.Int(64))
	i := p.NewLoopVar("i")
	s := p.NewScalarF("s")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(64), 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "s"}, ir.LoadF(a, i))),
		),
	}
	res, err := Compile(p, mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var hints int
	ir.WalkStmts(res.Prog.Body, func(s ir.Stmt) {
		switch s.(type) {
		case ir.Prefetch, ir.Release, ir.PrefetchRelease:
			hints++
		}
	})
	if hints != 0 {
		t.Fatalf("tiny program got %d hints, want 0", hints)
	}
}

func TestReleasesCanBeDisabled(t *testing.T) {
	mp := machine()
	opt := DefaultOptions()
	opt.Releases = false
	res, err := Compile(stream(256*512), mp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ir.Print(res.Prog), "release") {
		t.Fatal("releases emitted with Releases=false")
	}
}

func TestPagesPerFetchOption(t *testing.T) {
	mp := machine()
	for _, ppf := range []int64{1, 2, 8} {
		opt := DefaultOptions()
		opt.PagesPerFetch = ppf
		res, err := Compile(stream(256*512), mp, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Plan[0].Pages; got != ppf {
			t.Fatalf("PagesPerFetch=%d produced %d-page prefetches", ppf, got)
		}
	}
}

func TestDistanceCapRespected(t *testing.T) {
	mp := machine()
	opt := DefaultOptions()
	opt.MaxDistancePages = 8
	res, err := Compile(stream(256*512), mp, opt)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Plan[0]
	if e.Dist/e.StripLen*e.Pages > 8 {
		t.Fatalf("distance %d strips × %d pages exceeds cap", e.Dist/e.StripLen, e.Pages)
	}
}

// backwardStream builds: for i in [0,n): s += a[n-1-i] — a pure
// negative-stride sweep (the shape of APPLU's upper-triangular solve).
func backwardStream(n int64) *ir.Program {
	p := ir.NewProgram("backward")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "s"},
				ir.LoadF(a, ir.SubI(ir.SubI(np, ir.Int(1)), i)))),
		),
	}
	return p
}

func TestNegativeStridePrefetching(t *testing.T) {
	mp := machine()
	const n = 256 * 512 // 4× memory
	res, err := Compile(backwardStream(n), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vO, _, envO := run(t, backwardStream(n), mp, func(int64) float64 { return 1 }, true)
	vP, _, envP := run(t, res.Prog, mp, func(int64) float64 { return 1 }, true)
	if envO.Floats[0] != envP.Floats[0] || envO.Floats[0] != n {
		t.Fatalf("backward sums: O=%v P=%v", envO.Floats[0], envP.Floats[0])
	}
	if vP.Times().Total() >= vO.Times().Total() {
		t.Fatalf("prefetching lost on backward sweep: O=%v P=%v",
			vO.Times().Total(), vP.Times().Total())
	}
	// The backward sweep must be genuinely covered, not accidentally.
	if cov := vP.Stats().CoverageFactor(); cov < 0.9 {
		t.Fatalf("backward coverage %.3f, want ≥0.9", cov)
	}
	if hits := vP.Stats().PrefetchedHits; hits < int64(n/512/2) {
		t.Fatalf("too few prefetched hits on backward sweep: %d", hits)
	}
}

// Regression: nested strip levels whose spans do not divide each other
// (e.g. 17 and 3) must not re-execute boundary iterations. Two arrays
// with deliberately mismatched strides force non-aligned strips.
func TestNonDividingStripLevels(t *testing.T) {
	mp := machine()
	build := func() *ir.Program {
		p := ir.NewProgram("mixed")
		n := p.NewParam("n", 9000, true)
		// widths 17 and 3 elements per iteration: strip lengths become
		// floor(2048/17)=120 and floor(2048/3)=682 — coprime-ish.
		w1 := p.NewParam("w1", 17, true)
		w2 := p.NewParam("w2", 3, true)
		a := p.NewArrayF("a", ir.MulI(n, w1))
		b := p.NewArrayF("b", ir.MulI(n, w2))
		cnt := p.NewScalarF("cnt")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), n, 1,
				// Touch one element of each array per iteration; count
				// iterations so duplicates are detected exactly.
				ir.StoreF(a, []ir.IExpr{ir.MulI(i, w1)}, ir.Flt(1)),
				ir.StoreF(b, []ir.IExpr{ir.MulI(i, w2)}, ir.Flt(1)),
				ir.SetF(cnt, ir.AddF(ir.FScalar{Slot: cnt.Slot, Name: "cnt"}, ir.Flt(1))),
			),
		}
		return p
	}
	res, err := Compile(build(), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Require at least two strip levels, else the test proves nothing.
	levels := 0
	ir.WalkStmts(res.Prog.Body, func(s ir.Stmt) {
		if l, ok := s.(*ir.Loop); ok && l.Var != "i" {
			levels++
		}
	})
	if levels < 2 {
		t.Fatalf("expected ≥2 strip levels, got %d:\n%s", levels, ir.Print(res.Prog))
	}
	_, _, env := run(t, res.Prog, mp, nil, true)
	if got := env.Floats[0]; got != 9000 {
		t.Fatalf("loop body executed %v times, want 9000 (boundary iterations duplicated?)", got)
	}
}
