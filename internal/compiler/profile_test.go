package compiler

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/profile"
)

// indirectProg builds the Figure-2 shape: s += a[b[i]], with a small
// enough target array that a cold-miss profile can justify a preload.
func indirectProg(n int64) *ir.Program {
	p := ir.NewProgram("gather")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	b := p.NewArrayI("b", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "s"}, ir.LoadF(a, ir.LoadI(b, i)))),
		),
	}
	return p
}

// profFor fabricates a recorded profile for prog with the given stats
// applied to every site whose key contains match.
func profFor(t *testing.T, prog *ir.Program, pageSize int64, match string, stats profile.SiteProfile) *profile.Profile {
	t.Helper()
	p := &profile.Profile{Kernel: prog.Name, PageSize: pageSize}
	for _, s := range profile.SitesOf(prog) {
		sp := profile.SiteProfile{Key: s.Key, Count: 1}
		if strings.Contains(s.Key, match) {
			sp = stats
			sp.Key = s.Key
		}
		p.Sites = append(p.Sites, sp)
	}
	return p
}

func compileBoth(t *testing.T, build func() *ir.Program, prof *profile.Profile) (st, pr *Result) {
	t.Helper()
	mp := machine()
	var err error
	st, err = Compile(build(), mp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Profile = prof
	pr, err = Compile(build(), mp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, pr
}

// TestProfileNilBitIdentical: without a profile the compiler's output is
// bit-identical to what it was before the feature existed — the entire
// profile path must be inert when Options.Profile is nil.
func TestProfileNilBitIdentical(t *testing.T) {
	mp := machine()
	for _, build := range []func() *ir.Program{
		func() *ir.Program { return stream(256 * 512) },
		func() *ir.Program { return indirectProg(1 << 12) },
	} {
		a, err := Compile(build(), mp, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(build(), mp, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ir.Print(a.Prog) != ir.Print(b.Prog) || a.PlanString() != b.PlanString() {
			t.Fatal("static compile is not deterministic")
		}
		if a.ProfileMismatches != 0 {
			t.Fatalf("static compile reports %d mismatches", a.ProfileMismatches)
		}
	}
}

// TestProfileObservedDistance: a dense stream whose observed latency is
// far below the static worst-case model gets the measured distance
// (times the contention headroom), not the model's.
func TestProfileObservedDistance(t *testing.T) {
	build := func() *ir.Program { return stream(256 * 512) }
	prog := build()
	mp := machine()
	if err := prog.Resolve(mp.PageSize); err != nil {
		t.Fatal(err)
	}
	prof := profFor(t, prog, mp.PageSize, "a[", profile.SiteProfile{
		Count: 256 * 512, Faults: 100, StallTicks: 100 * 1_000_000, // avg 1ms
		InterTicks: 1000 * 2000, InterN: 1000, // avg 2µs/iter
	})
	st, pr := compileBoth(t, build, prof)
	if pr.ProfileMismatches != 0 {
		t.Fatalf("mismatches: %d", pr.ProfileMismatches)
	}
	var se, pe *PlanEntry
	for i := range st.Plan {
		if st.Plan[i].Array == "a" {
			se = &st.Plan[i]
		}
	}
	for i := range pr.Plan {
		if pr.Plan[i].Array == "a" {
			pe = &pr.Plan[i]
		}
	}
	if se == nil || pe == nil {
		t.Fatal("stream plan entry missing")
	}
	if !pe.Profiled {
		t.Fatal("profile did not mark the dense entry")
	}
	// ceil(1ms / 2µs) = 500 iters, ×2 headroom = 1000, rounded up to the
	// 2048-iteration strip — versus the static model's cap-bound 4096.
	if pe.Dist != 2048 {
		t.Fatalf("profiled dist %d, want 2048", pe.Dist)
	}
	if se.Dist == pe.Dist {
		t.Fatal("profile changed nothing (vacuous test)")
	}
}

// TestProfileIndirectPreload: cold misses over a small indirect target
// (faults ≈ pages) trigger a whole-array preload before the nest, and
// the observed distance replaces the static one.
func TestProfileIndirectPreload(t *testing.T) {
	const n = 1 << 12 // a: 8 pages of float64
	build := func() *ir.Program { return indirectProg(n) }
	prog := build()
	mp := machine()
	if err := prog.Resolve(mp.PageSize); err != nil {
		t.Fatal(err)
	}
	prof := profFor(t, prog, mp.PageSize, "a[b[i]]", profile.SiteProfile{
		Count: n, Faults: 10, StallTicks: 10 * 1_000_000,
		InterTicks: 1000 * 2000, InterN: 1000,
	})
	st, pr := compileBoth(t, build, prof)
	if pr.ProfileMismatches != 0 {
		t.Fatalf("mismatches: %d", pr.ProfileMismatches)
	}
	var pe *PlanEntry
	for i := range pr.Plan {
		if pr.Plan[i].Array == "a" && pr.Plan[i].Kind.String() == "indirect" {
			pe = &pr.Plan[i]
		}
	}
	if pe == nil || !pe.Profiled {
		t.Fatalf("indirect entry not profiled: %+v", pr.Plan)
	}
	if pe.Dist != 1000 { // ceil(1ms/2µs) × 2
		t.Fatalf("indirect dist %d, want 1000", pe.Dist)
	}
	text := ir.Print(pr.Prog)
	if !strings.Contains(text, "&a[0], 8") {
		t.Fatalf("no 8-page preload of a in output:\n%s", text)
	}
	if strings.Contains(ir.Print(st.Prog), "&a[0], 8") {
		t.Fatal("static output contains the preload (vacuous test)")
	}
}

// TestProfileMismatchDegradesToStatic is the cross-kernel property: a
// profile recorded on a different program (or memory geometry) must
// leave the plan exactly static and be fully tallied as mismatches.
func TestProfileMismatchDegradesToStatic(t *testing.T) {
	build := func() *ir.Program { return indirectProg(1 << 12) }
	mp := machine()
	other := stream(256 * 512) // different kernel entirely
	if err := other.Resolve(mp.PageSize); err != nil {
		t.Fatal(err)
	}
	cases := map[string]*profile.Profile{
		"wrong kernel": profFor(t, other, mp.PageSize, "a[", profile.SiteProfile{
			Count: 10, Faults: 10, StallTicks: 1_000_000, InterTicks: 2000, InterN: 1,
		}),
		"wrong page size": func() *profile.Profile {
			prog := build()
			if err := prog.Resolve(mp.PageSize); err != nil {
				t.Fatal(err)
			}
			p := profFor(t, prog, mp.PageSize/2, "a[b[i]]", profile.SiteProfile{
				Count: 10, Faults: 10, StallTicks: 1_000_000, InterTicks: 2000, InterN: 1,
			})
			return p
		}(),
	}
	for name, prof := range cases {
		t.Run(name, func(t *testing.T) {
			st, pr := compileBoth(t, build, prof)
			if pr.ProfileMismatches == 0 {
				t.Fatal("mismatched profile reported zero mismatches")
			}
			if ir.Print(st.Prog) != ir.Print(pr.Prog) {
				t.Fatal("mismatched profile changed the emitted program")
			}
			if st.PlanString() != pr.PlanString() {
				t.Fatalf("mismatched profile changed the plan:\n%s\nvs\n%s", st.PlanString(), pr.PlanString())
			}
		})
	}
}
