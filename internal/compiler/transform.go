package compiler

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/locality"
)

// rebuild copies a statement list, recursively transforming every loop
// that has prefetch jobs attached. Statements without loops are shared
// with the original program (they are immutable values).
func (t *transform) rebuild(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Loop:
			out = append(out, t.preloads[x]...)
			body := t.rebuild(x.Body)
			jobs := t.jobs[x]
			if len(jobs) == 0 {
				nl := *x
				nl.Body = body
				out = append(out, &nl)
				continue
			}
			prolog, loop := t.pipeline(x, body, jobs)
			out = append(out, prolog...)
			out = append(out, loop)
		case ir.If:
			out = append(out, ir.If{Cond: x.Cond, Then: t.rebuild(x.Then), Else: t.rebuild(x.Else)})
		default:
			out = append(out, s)
		}
	}
	return out
}

// pipeline software-pipelines the jobs along loop l (whose body has
// already been rebuilt): it emits prolog block prefetches covering the
// first dist iterations of each stream, strip-mines the loop once per
// distinct fetch rate, and plants steady-state prefetch (and bundled
// release) calls at the strip heads. Per-iteration jobs (indirect
// references) are planted at the top of the innermost body.
func (t *transform) pipeline(l *ir.Loop, body []ir.Stmt, jobs []job) ([]ir.Stmt, ir.Stmt) {
	// Prolog: block prefetches for the pipeline startup, before the loop.
	var prolog []ir.Stmt
	for _, j := range jobs {
		if j.kind == locality.Indirect || j.selfStride != 0 {
			continue // no addresses to prefetch without running the loop
		}
		pages := j.dist / j.stripLen * j.pages
		start := l.Lo
		if j.group.Leader.StrideBytes(l) < 0 {
			// Backward sweep: the prolog covers [lo, lo+dist), whose
			// lowest address is at the last of those iterations.
			start = ir.AddI(l.Lo, ir.Int((j.dist-1)*l.Step))
		}
		prolog = append(prolog, ir.Prefetch{
			Arr:   j.group.Leader.Arr,
			Idx:   t.hintIdx(j.group.Leader, l, start),
			Pages: ir.Int(pages),
		})
	}

	// Distinct strip spans (in loop-variable units), widest first.
	spanOf := func(j job) int64 { return j.stripLen * l.Step }
	var spans []int64
	seen := map[int64]bool{}
	for _, j := range jobs {
		if j.stripLen > 1 && !seen[spanOf(j)] {
			seen[spanOf(j)] = true
			spans = append(spans, spanOf(j))
		}
	}
	sort.Slice(spans, func(i, k int) bool { return spans[i] > spans[k] })

	// Innermost: the original loop variable running over one strip (or
	// the whole range when no strip mining happens), with per-iteration
	// jobs planted first.
	var perIter []ir.Stmt
	for _, j := range jobs {
		switch {
		case j.stripLen != 1:
		case j.selfStride != 0:
			perIter = append(perIter, t.selfHint(j)...)
		case j.pipe != nil && j.pipe != l:
			perIter = append(perIter, t.outerHint(j, l)...)
		default:
			perIter = append(perIter, t.steadyState(j, l, ir.ISlot{Slot: l.Slot, Name: l.Var}, l.Step)...)
		}
	}

	build := func(lo, hi ir.IExpr, inner []ir.Stmt) ir.Stmt {
		nl := &ir.Loop{Var: l.Var, Slot: l.Slot, Lo: lo, Hi: hi, Step: l.Step, EstTrip: l.EstTrip}
		nl.Body = inner
		return nl
	}

	innerBody := append(append([]ir.Stmt{}, perIter...), body...)
	if len(spans) == 0 {
		return prolog, build(l.Lo, l.Hi, innerBody)
	}

	// Nest strip loops from widest (outermost) to narrowest. Each strip
	// level gets a fresh loop variable; the jobs firing at that rate are
	// planted at its head.
	curLo, curHi := l.Lo, l.Hi
	type level struct {
		v        ir.ISlot
		span     int64
		lo, hi   ir.IExpr
		prefetch []ir.Stmt
	}
	var levels []level
	for d, span := range spans {
		v := t.out.NewLoopVar(fmt.Sprintf("%s%d", l.Var, d))
		var pf []ir.Stmt
		for _, j := range jobs {
			if j.stripLen > 1 && spanOf(j) == span {
				pf = append(pf, t.steadyState(j, l, v, l.Step)...)
			}
		}
		levels = append(levels, level{v: v, span: span, lo: curLo, hi: curHi, prefetch: pf})
		curLo = v
		// Each nested segment clamps to the END OF ITS ENCLOSING STRIP,
		// not the original loop bound: strip spans at different levels
		// need not divide each other, and clamping to l.Hi would let a
		// boundary iteration run in two strips.
		curHi = ir.MinI(ir.AddI(v, ir.Int(span)), curHi)
	}

	// Assemble inside-out.
	stmt := build(curLo, curHi, innerBody)
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		nested := append(append([]ir.Stmt{}, lv.prefetch...), stmt)
		sl := &ir.Loop{Var: lv.v.Name, Slot: lv.v.Slot, Lo: lv.lo, Hi: lv.hi, Step: lv.span}
		sl.Body = nested
		stmt = sl
	}
	return prolog, stmt
}

// steadyState emits the strip-head (or per-iteration) prefetch for a job,
// issued dist iterations ahead, with the trailing release one strip
// behind bundled into the same call when enabled. The release is guarded
// so the pipeline's first strips do not release live data.
//
// Block prefetches always fetch pages forward from their start address,
// so for a negative-stride reference (a backward sweep) the start must be
// the far end of the target strip: the variable offset gains an extra
// strip span minus one step, and the release strip's start is one step
// behind rather than one span.
func (t *transform) steadyState(j job, l *ir.Loop, at ir.ISlot, step int64) []ir.Stmt {
	lead := j.group.Leader
	span := j.stripLen * step
	neg := lead.StrideBytes(l) < 0
	distSpan := j.dist * step
	if neg {
		distSpan += span - step
	}
	target := ir.AddI(at, ir.Int(distSpan))
	pf := ir.Prefetch{
		Arr:   lead.Arr,
		Idx:   t.hintIdx(lead, l, target),
		Pages: ir.Int(j.pages),
	}
	if !j.release {
		return []ir.Stmt{pf}
	}
	trail := j.group.Trailer
	relOff := span
	if neg {
		relOff = step
	}
	rel := ir.SubI(at, ir.Int(relOff))
	bundled := ir.PrefetchRelease{
		PfArr: pf.Arr, PfIdx: pf.Idx, PfPages: pf.Pages,
		RelArr: trail.Arr, RelIdx: t.hintIdx(trail, l, rel), RelPages: ir.Int(j.pages),
	}
	// if (at >= lo + span) prefetch_release else prefetch
	return []ir.Stmt{ir.If{
		Cond: ir.CmpI{Op: ir.Ge, A: at, B: ir.AddI(l.Lo, ir.Int(span))},
		Then: []ir.Stmt{bundled},
		Else: []ir.Stmt{pf},
	}}
}

// selfHint emits the per-iteration hint for a self-relative stride job:
// the reference's own subscripts with the last dimension advanced by the
// observed stride times the distance. The hint path clamps addresses and
// never bounds-checks, so running past the array is safe, and a hint is
// non-binding, so a wrongly predicted stride costs only a wasted fetch.
func (t *transform) selfHint(j job) []ir.Stmt {
	lead := j.group.Leader
	idx := make([]ir.IExpr, len(lead.Idx))
	copy(idx, lead.Idx)
	last := len(idx) - 1
	idx[last] = ir.AddI(idx[last], ir.Int(j.selfStride))
	return []ir.Stmt{ir.Prefetch{Arr: lead.Arr, Idx: idx, Pages: ir.Int(j.pages)}}
}

// outerHint emits the per-iteration hint for an indirect job pipelined
// along an outer driving loop (profile-guided): the subscripts are
// re-evaluated with the outer variable advanced dist iterations (clamped
// to its last value), while the loops between the outer loop and the
// plant point stay live — e.g. x[col[(i+dist)*nz+k]] hinted from the
// (i, k) body when the latency does not fit k's trip count.
func (t *transform) outerHint(j job, plant *ir.Loop) []ir.Stmt {
	lead := j.group.Leader
	pipe := j.pipe
	target := ir.AddI(ir.ISlot{Slot: pipe.Slot, Name: pipe.Var}, ir.Int(j.dist*pipe.Step))
	return []ir.Stmt{ir.Prefetch{
		Arr:   lead.Arr,
		Idx:   t.hintIdxAt(lead, pipe, plant, target),
		Pages: ir.Int(j.pages),
	}}
}

// hintIdx builds the subscript list for a hint derived from ref, with the
// pipeline loop's variable replaced by target (clamped to the loop's last
// valid value so indirect loads in the subscript stay in bounds) and the
// variables of loops nested inside the pipeline loop replaced by their
// lower bounds (their value at the start of the target iteration).
func (t *transform) hintIdx(ref *locality.Ref, l *ir.Loop, target ir.IExpr) []ir.IExpr {
	return t.hintIdxAt(ref, l, l, target)
}

// hintIdxAt is hintIdx with distinct pipeline and plant loops: loop
// variables between the two remain live at the plant point and are kept;
// only loops nested inside the plant loop fall back to their lower
// bounds.
func (t *transform) hintIdxAt(ref *locality.Ref, pipe, plant *ir.Loop, target ir.IExpr) []ir.IExpr {
	last := ir.SubI(pipe.Hi, ir.Int(pipe.Step)) // last value the variable takes
	clamped := ir.MinI(target, last)
	repl := map[int]ir.IExpr{pipe.Slot: clamped}
	inner := false
	for _, pl := range ref.Path {
		if pl == plant {
			inner = true
			continue
		}
		if inner {
			repl[pl.Slot] = pl.Lo
		}
	}
	out := make([]ir.IExpr, len(ref.Idx))
	for i, ix := range ref.Idx {
		out[i] = substIExpr(ix, repl)
	}
	return out
}

// substIExpr replaces slot reads according to repl, recursively applying
// the substitution to the replacement expressions as well (minus the slot
// being replaced, to avoid cycles).
func substIExpr(e ir.IExpr, repl map[int]ir.IExpr) ir.IExpr {
	if len(repl) == 0 {
		return e
	}
	switch x := e.(type) {
	case ir.IConst:
		return x
	case ir.ISlot:
		if r, ok := repl[x.Slot]; ok {
			sub := make(map[int]ir.IExpr, len(repl))
			for k, v := range repl {
				if k != x.Slot {
					sub[k] = v
				}
			}
			return substIExpr(r, sub)
		}
		return x
	case ir.IBin:
		return ir.IBin{Op: x.Op, A: substIExpr(x.A, repl), B: substIExpr(x.B, repl)}
	case ir.ILoad:
		idx := make([]ir.IExpr, len(x.Idx))
		for i, ix := range x.Idx {
			idx[i] = substIExpr(ix, repl)
		}
		return ir.ILoad{Arr: x.Arr, Idx: idx}
	}
	return e
}
