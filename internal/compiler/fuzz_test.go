package compiler

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// Differential testing: generate random loop-nest programs, run each on
// an out-of-core machine with plain paging and with compiler-inserted
// prefetching, and require bit-identical results. This is the central
// soundness property of non-binding prefetching: hints may only move I/O
// around, never change what the program computes.

// genProgram builds a random but well-formed program from rng. Every
// subscript is clamped into bounds with min/max (which also exercises the
// analyzer's opaque fallback); indirect accesses go through an index
// array seeded with valid indices.
func genProgram(rng *rand.Rand) (*ir.Program, func(*stripefs.File, int64)) {
	p := ir.NewProgram("fuzz")
	nA := int64(2048 + rng.Intn(4096))
	nB := int64(1024 + rng.Intn(2048))
	n := p.NewParam("n", nA, rng.Intn(4) != 0) // occasionally unknown
	m := p.NewParam("m", nB, true)
	a := p.NewArrayF("a", n)
	bArr := p.NewArrayF("b", m)
	idxArr := p.NewArrayI("idx", m)
	s := p.NewScalarF("s")

	clampA := func(e ir.IExpr) ir.IExpr {
		return ir.MaxI(ir.Int(0), ir.MinI(e, ir.SubI(n, ir.Int(1))))
	}
	clampB := func(e ir.IExpr) ir.IExpr {
		return ir.MaxI(ir.Int(0), ir.MinI(e, ir.SubI(m, ir.Int(1))))
	}

	// Random float expression over the loop variable v.
	var fexpr func(v ir.ISlot, depth int) ir.FExpr
	fexpr = func(v ir.ISlot, depth int) ir.FExpr {
		switch rng.Intn(7) {
		case 0:
			return ir.Flt(float64(rng.Intn(9)) + 0.5)
		case 1:
			return ir.FScalar{Slot: s.Slot, Name: s.Name}
		case 2:
			off := int64(rng.Intn(7)) - 3
			return ir.LoadF(a, clampA(ir.AddI(v, ir.Int(off))))
		case 3:
			return ir.LoadF(bArr, clampB(v))
		case 4:
			// Indirect a[idx[v]] (idx values are valid a-indices).
			return ir.LoadF(a, ir.LoadI(idxArr, clampB(v)))
		case 5:
			if depth > 0 {
				return ir.AddF(fexpr(v, depth-1), fexpr(v, depth-1))
			}
			return ir.Flt(1)
		default:
			if depth > 0 {
				return ir.MulF(fexpr(v, depth-1), ir.Flt(0.5))
			}
			return ir.Flt(2)
		}
	}

	var body []ir.Stmt
	nests := 1 + rng.Intn(3)
	for k := 0; k < nests; k++ {
		v := p.NewLoopVar("i")
		var inner []ir.Stmt
		stmts := 1 + rng.Intn(3)
		for q := 0; q < stmts; q++ {
			switch rng.Intn(4) {
			case 0:
				inner = append(inner, ir.StoreF(a, []ir.IExpr{clampA(v)}, fexpr(v, 2)))
			case 1:
				inner = append(inner, ir.StoreF(bArr, []ir.IExpr{clampB(v)}, fexpr(v, 1)))
			case 2:
				inner = append(inner, ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, fexpr(v, 1))))
			default:
				inner = append(inner, ir.If{
					Cond: ir.CmpI{Op: ir.Lt, A: ir.ModI(v, ir.Int(int64(2+rng.Intn(5)))), B: ir.Int(1)},
					Then: []ir.Stmt{ir.StoreF(a, []ir.IExpr{clampA(v)}, fexpr(v, 1))},
					Else: []ir.Stmt{ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, ir.Flt(0.25)))},
				})
			}
		}
		lo := int64(rng.Intn(3))
		hiVar := n
		if rng.Intn(2) == 0 {
			hiVar = m
		}
		step := int64(1 + rng.Intn(3))
		body = append(body, ir.For(v, ir.Int(lo), hiVar, step, inner...))
	}
	p.Body = body

	seedVals := func(file *stripefs.File, pageSize int64) {
		exec.SeedF64(file, pageSize, a, func(i int64) float64 { return float64(i%101) / 7 })
		exec.SeedF64(file, pageSize, bArr, func(i int64) float64 { return float64(i%53) / 3 })
		exec.SeedI64(file, pageSize, idxArr, func(i int64) int64 { return (i * 31) % nA })
	}
	return p, seedVals
}

// runFuzz executes a program (optionally compiled) on a small out-of-core
// machine and returns (scalar result, checksum of array a, checksum of b).
func runFuzz(t *testing.T, prog *ir.Program, mp hw.Params, seed func(*stripefs.File, int64)) (float64, float64, float64) {
	t.Helper()
	c := sim.NewClock()
	fs := stripefs.New(c, mp, nil)
	if err := prog.Resolve(mp.PageSize); err != nil {
		t.Fatal(err)
	}
	pages := prog.TotalBytes(mp.PageSize) / mp.PageSize
	if pages == 0 {
		pages = 1
	}
	file, err := fs.Create(prog.Name, pages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, mp, file)
	m, err := exec.New(prog, v, rt.Register(v, true))
	if err != nil {
		t.Fatal(err)
	}
	seed(file, mp.PageSize)
	env := m.Run()
	v.Finish()

	check := func(arr *ir.Array) float64 {
		var sum float64
		for i := int64(0); i < arr.Elems; i++ {
			sum += v.PeekF64(arr.Base+i*ir.ElemSize) * float64(i%13+1)
		}
		return sum
	}
	return env.Floats[0], check(prog.Arrays[0]), check(prog.Arrays[1])
}

func TestCompilerPreservesSemanticsOnRandomPrograms(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	mp := hw.Default()
	mp.MemoryBytes = 24 * mp.PageSize // aggressively small: heavy paging

	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(1000 + it)))
		prog, seed := genProgram(rng)
		if err := prog.Resolve(mp.PageSize); err != nil {
			t.Fatal(err)
		}

		opts := DefaultOptions()
		if it%3 == 1 {
			opts.PagesPerFetch = 1 + int64(rng.Intn(8))
		}
		if it%4 == 2 {
			opts.TwoVersionLoops = true
		}
		res, err := Compile(prog, mp, opts)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", it, err)
		}

		// The transformed program must contain the original computation
		// verbatim plus hints and strip loops; run both out of core.
		rng2 := rand.New(rand.NewSource(int64(1000 + it)))
		orig, seedO := genProgram(rng2)
		sO, aO, bO := runFuzz(t, orig, mp, seedO)
		sP, aP, bP := runFuzz(t, res.Prog, mp, seed)
		if sO != sP || aO != aP || bO != bP {
			t.Fatalf("seed %d: results diverge:\n  scalar %v vs %v\n  a %v vs %v\n  b %v vs %v\nprogram:\n%s\ncompiled:\n%s",
				it, sO, sP, aO, aP, bO, bP, ir.Print(orig), ir.Print(res.Prog))
		}
	}
}
