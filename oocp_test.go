package oocp_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	oocp "repro"
)

const apiSrc = `
program api
param n = 1 << 17
array double a[n]
scalar double s
for i = 0 .. n {
    s = s + a[i]
}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	prog, err := oocp.ParseProgram(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	machine := oocp.DefaultMachine()
	if err := prog.Resolve(machine.PageSize); err != nil {
		t.Fatal(err)
	}
	data := oocp.DataBytes(prog, machine.PageSize)
	if data != (1<<17)*8 {
		t.Fatalf("data bytes = %d", data)
	}

	cfg := oocp.DefaultConfig(oocp.MachineFor(data, 2))
	cfg.Seed = oocp.Seeder(map[string]func(int64) float64{
		"a": func(int64) float64 { return 2 },
	}, nil)

	p, err := oocp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Env.Floats[0]; got != float64(1<<17)*2 {
		t.Fatalf("sum = %v", got)
	}

	cfg.Prefetch = false
	prog2, _ := oocp.ParseProgram(apiSrc)
	o, err := oocp.Run(prog2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Speedup(o) <= 1 {
		t.Fatalf("prefetching did not win: %.2f", p.Speedup(o))
	}
	if oocp.Peek(p, "a", 0) != 2 {
		t.Fatal("Peek broken")
	}
}

func TestPublicCompileShowsHints(t *testing.T) {
	prog, err := oocp.ParseProgram(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oocp.Compile(prog, oocp.DefaultMachine(), oocp.DefaultCompilerOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := oocp.PrintProgram(res.Prog)
	if !strings.Contains(out, "prefetch") {
		t.Fatalf("no prefetch hints in compiled output:\n%s", out)
	}
	if !strings.Contains(res.PlanString(), "dense") {
		t.Fatal("plan missing")
	}
}

func TestSuiteAccessors(t *testing.T) {
	if len(oocp.Suite()) != 8 {
		t.Fatal("suite size")
	}
	if oocp.AppByName("FFT") == nil {
		t.Fatal("AppByName")
	}
	r, err := oocp.RunAppPair(oocp.AppByName("EMBAR"), 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup() <= 1 {
		t.Fatalf("EMBAR pair speedup %.2f", r.Speedup())
	}
}

func TestRunContextCancelled(t *testing.T) {
	prog, err := oocp.ParseProgram(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := oocp.DefaultConfig(oocp.MachineFor((1<<17)*8, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := oocp.RunContext(ctx, prog, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same program still runs fine on a live context.
	if _, err := oocp.RunContext(context.Background(), prog, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPeekE(t *testing.T) {
	prog, err := oocp.ParseProgram(apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := oocp.DefaultConfig(oocp.MachineFor((1<<17)*8, 2))
	cfg.Seed = oocp.Seeder(map[string]func(int64) float64{
		"a": func(int64) float64 { return 7 },
	}, nil)
	res, err := oocp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := oocp.PeekE(res, "a", 3); err != nil || v != 7 {
		t.Fatalf("PeekE = %v, %v", v, err)
	}
	if _, err := oocp.PeekE(res, "nosuch", 0); err == nil {
		t.Fatal("PeekE accepted a missing array")
	}
	if _, err := oocp.PeekE(res, "a", 1<<20); err == nil {
		t.Fatal("PeekE accepted an out-of-range index")
	}
	// Peek now panics with a useful error instead of a nil dereference.
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "nosuch") {
				t.Fatalf("Peek panic = %v, want named-array error", r)
			}
		}()
		oocp.Peek(res, "nosuch", 0)
	}()
}

func TestRunSuiteContextOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	var events int
	rs, err := oocp.RunSuiteContext(context.Background(), oocp.SuiteOptions{
		Scale:       0.05,
		Parallelism: 4,
		Progress:    func(oocp.Progress) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("suite returned %d apps", len(rs))
	}
	if events != 16 { // 8 apps × (O, P)
		t.Fatalf("progress events = %d, want 16", events)
	}
}
