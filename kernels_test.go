package oocp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	oocp "repro"
)

// Every kernel in the examples corpus must parse, compile with at least
// one prefetch inserted, and run correctly both with and without
// prefetching on an out-of-core machine.
func TestKernelCorpus(t *testing.T) {
	files, err := filepath.Glob("examples/kernels/*.loop")
	if err != nil || len(files) == 0 {
		t.Fatalf("no kernel corpus found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			parse := func() *oocp.Program {
				p, err := oocp.ParseProgram(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				return p
			}
			prog := parse()
			machine := oocp.DefaultMachine()
			if err := prog.Resolve(machine.PageSize); err != nil {
				t.Fatal(err)
			}
			machine = oocp.MachineFor(oocp.DataBytes(prog, machine.PageSize), 2)

			res, err := oocp.Compile(prog, machine, oocp.DefaultCompilerOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !strings.Contains(oocp.PrintProgram(res.Prog), "prefetch") {
				t.Fatal("no prefetches inserted for an out-of-core kernel")
			}

			seed := oocp.Seeder(map[string]func(int64) float64{
				"A": func(i int64) float64 { return float64(i%11) / 3 },
				"B": func(i int64) float64 { return float64(i%7) / 5 },
				"x": func(i int64) float64 { return float64(i % 5) },
			}, map[string]func(int64) int64{
				"sample": func(i int64) int64 { return (i*2654435761 + 7) & ((1 << 30) - 1) },
			})

			run := func(prefetch bool) *oocp.Result {
				cfg := oocp.DefaultConfig(machine)
				cfg.Prefetch = prefetch
				cfg.Seed = seed
				r, err := oocp.Run(parse(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			if testing.Short() {
				return // compile-only in short mode
			}
			o := run(false)
			p := run(true)
			// Results identical: checksum the first array.
			arr := prog.Arrays[len(prog.Arrays)-1]
			for _, i := range []int64{0, 1, arr.Elems / 2, arr.Elems - 1} {
				if oocp.Peek(o, arr.Name, i) != oocp.Peek(p, arr.Name, i) {
					t.Fatalf("%s[%d] differs between O and P runs", arr.Name, i)
				}
			}
			if p.Elapsed >= o.Elapsed {
				t.Errorf("prefetching lost on %s: O=%v P=%v", f, o.Elapsed, p.Elapsed)
			}
		})
	}
}
